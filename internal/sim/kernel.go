package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"wadc/internal/obs"
	"wadc/internal/telemetry"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining its event queue.
var ErrStopped = errors.New("sim: stopped")

// errKilled is the sentinel panicked into process goroutines to unwind them
// when the kernel shuts down. It never escapes the package.
var errKilled = errors.New("sim: process killed")

// Tracer receives a line for every significant kernel action when tracing is
// enabled. It exists for debugging and for determinism tests (identical seeds
// must produce identical traces). Since the structured telemetry stream was
// introduced, Tracer is a thin adapter over it: WithTracer installs a sink
// that formats kernel-level events back into the legacy printf lines.
type Tracer func(at Time, format string, args ...any)

// Option configures a Kernel.
type Option func(*Kernel)

// WithSeed sets the seed for the kernel's random number generator. The
// default seed is 1.
func WithSeed(seed int64) Option {
	return func(k *Kernel) { k.rng = rand.New(rand.NewSource(seed)) }
}

// WithTracer installs a tracer invoked on every process hold, kill, mailbox
// send/receive and resource wait/grant. Tracing is off by default. The tracer
// rides the structured telemetry stream as one more sink, so installing it
// alongside WithTelemetry changes nothing about either one's output.
func WithTracer(t Tracer) Option {
	return func(k *Kernel) { k.AddSink(tracerSink{t}) }
}

// WithTelemetry installs a structured-event sink. Multiple sinks (including
// the Tracer adapter) accumulate into a fan-out in installation order.
// Telemetry is off by default, and the disabled path costs zero allocations:
// every emission site guards on the nil sink before building its event.
func WithTelemetry(s telemetry.Sink) Option {
	return func(k *Kernel) { k.AddSink(s) }
}

// WithObserver attaches a host-process performance recorder: the kernel
// counts every dispatched event, attributes wall time to the subsystem of
// whatever it dispatches, and pprof-labels process goroutines by subsystem
// and tenant. Observation is off by default and every hook is guarded on
// the nil recorder, so a run without one pays nothing — the same
// guard-before-construct discipline telemetry follows. The recorder only
// ever reads the simulation; it can never change event order, so identical
// seeds produce byte-identical artifacts with observation on or off.
func WithObserver(r *obs.Recorder) Option {
	return func(k *Kernel) { k.obs = r }
}

// tracerSink adapts the legacy printf Tracer onto the structured event
// stream, reproducing the historical trace lines byte-for-byte. Model-level
// events (which did not exist in the printf era) are ignored, keeping legacy
// trace digests comparable across telemetry-on and telemetry-off runs.
type tracerSink struct{ t Tracer }

func (s tracerSink) Emit(ev telemetry.Event) {
	at := Time(ev.At)
	switch ev.Kind {
	case telemetry.KindProcHold:
		s.t(at, "%s hold %v", ev.Name, time.Duration(ev.Dur))
	case telemetry.KindProcKilled:
		s.t(at, "kill %s", ev.Name)
	case telemetry.KindMailboxSend:
		s.t(at, "mailbox %s send prio=%v", ev.Name, Priority(ev.Prio))
	case telemetry.KindMailboxRecv:
		s.t(at, "mailbox %s recv prio=%v", ev.Name, Priority(ev.Prio))
	case telemetry.KindResourceWait:
		s.t(at, "resource %s wait %s prio=%v", ev.Name, ev.Aux, Priority(ev.Prio))
	case telemetry.KindResourceGrant:
		s.t(at, "resource %s grant %s", ev.Name, ev.Aux)
	}
}

// Kernel is a deterministic discrete-event scheduler. It owns simulated time,
// the pending-event queue, and all process goroutines. A Kernel must be used
// from a single goroutine (the one calling Run); process goroutines are
// managed internally and never run concurrently with one another.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventQueue
	procs  []*Proc
	rng    *rand.Rand
	tel    telemetry.Sink
	obs    *obs.Recorder // nil unless WithObserver attached a perf recorder

	// tenant is the current tenant register: the tenant tag of whichever
	// process (or timer callback) is executing right now. Emit stamps it
	// onto every event, so a multi-tenant run's telemetry is attributed
	// without each emission site knowing about tenancy. 0 means
	// single-tenant / shared infrastructure.
	tenant int32

	// yield is the control-transfer channel: whichever process goroutine is
	// running hands control back to the scheduler by sending on it.
	yield chan struct{}

	running  bool
	stopped  bool
	procErr  error // first process failure, reported by Run
	liveProc int   // number of spawned, not-yet-finished processes
}

// NewKernel constructs a kernel with the given options.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{
		rng:   rand.New(rand.NewSource(1)),
		yield: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(k)
	}
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All model-level
// randomness must come from here (or from generators seeded from here) so
// that simulations replay identically.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// CurrentTenant returns the tenant register: the tenant tag of the process
// or timer callback currently executing (0 outside any tenant's context).
// Shared-model layers (the network's per-tenant accounting) read it instead
// of threading a tenant id through every call.
func (k *Kernel) CurrentTenant() int32 { return k.tenant }

// Pending returns the number of events still queued. After Run drains
// cleanly it is zero; the multi-tenant harness asserts this to prove tenant
// teardown leaked no timers or wake-ups.
func (k *Kernel) Pending() int { return k.events.Len() }

// Scheduled returns the total number of events ever scheduled on this
// kernel (the tie-break sequence counter). It is maintained regardless of
// observation, so benchmarks can report events/sec without attaching a
// recorder.
func (k *Kernel) Scheduled() uint64 { return k.seq }

// Obs returns the attached performance recorder, or nil when host-process
// observation is disabled. Model layers cache this once and guard their
// hooks on the nil check, exactly like Telemetry.
func (k *Kernel) Obs() *obs.Recorder { return k.obs }

// AddSink appends a telemetry sink to the kernel's fan-out. Normally sinks
// are installed via WithTelemetry/WithTracer at construction; AddSink exists
// so higher layers (e.g. the run harness) can attach sinks after building the
// kernel but before the simulation starts.
func (k *Kernel) AddSink(s telemetry.Sink) {
	if s == nil {
		return
	}
	if k.tel == nil {
		k.tel = s
		return
	}
	k.tel = telemetry.Multi(k.tel, s)
}

// Telemetry returns the kernel's telemetry sink, or nil when telemetry is
// disabled. Model layers cache this once and guard their emission sites on
// the nil check so that disabled telemetry costs no allocations.
func (k *Kernel) Telemetry() telemetry.Sink { return k.tel }

// Emit stamps ev with the current simulated time and forwards it to the
// telemetry sink. It is a no-op when telemetry is disabled, but callers on
// hot paths should still guard on Telemetry() != nil before constructing the
// event to keep the disabled path allocation-free.
//
//lint:hotpath
//lint:allocbudget 0 disabled-telemetry is free and enabled sinks preallocate; BENCH sim=4 allocs/op happen in schedule, not here
func (k *Kernel) Emit(ev telemetry.Event) {
	if k.tel == nil {
		return
	}
	ev.At = int64(k.now)
	if ev.Tenant == 0 {
		ev.Tenant = k.tenant
	}
	k.tel.Emit(ev)
}

// schedule inserts an event at absolute time at. Panics if at is in the past:
// simulations cannot rewrite history.
//
//lint:hotpath
//lint:allocbudget 4 one &event node per scheduled callback plus three Sprintf sites on the scheduling-in-the-past panic path
func (k *Kernel) schedule(at Time, fn func(), p *Proc) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	ev := &event{at: at, seq: k.seq, fn: fn, proc: p, tenant: k.tenant}
	if k.obs != nil && fn != nil {
		// Attribute the future callback to the subsystem arming it now
		// (a relocation timer runs as placement, a retry timer as its
		// dataflow engine). Field write only: nothing allocated.
		ev.subsys = k.obs.Current()
	}
	k.seq++
	k.events.push(ev)
	return ev
}

// After schedules fn to run after delay d. The returned Timer can cancel it.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return &Timer{k: k, ev: k.schedule(k.now.Add(d), fn, nil)}
}

// At schedules fn at absolute simulated time t (clamped to now if earlier).
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	return &Timer{k: k, ev: k.schedule(t, fn, nil)}
}

// Every schedules fn every period, starting one period from now, until the
// returned Timer is stopped or the simulation ends. Periodic work such as the
// global placement algorithm's relocation timer uses this.
func (k *Kernel) Every(period time.Duration, fn func()) *Timer {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Timer{k: k, periodic: true}
	var tick func()
	tick = func() {
		fn()
		if !k.stopped && !t.stopped {
			t.ev = k.schedule(k.now.Add(period), tick, nil)
		}
	}
	t.ev = k.schedule(k.now.Add(period), tick, nil)
	return t
}

// Stop halts the simulation: Run returns ErrStopped after the current event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue drains, Stop is called,
// or a process panics. It then unwinds every still-blocked process goroutine
// so that no goroutines leak. Run returns the first process error, ErrStopped
// if stopped, or nil on a clean drain.
func (k *Kernel) Run() error { return k.RunUntil(Time(1<<62 - 1)) }

// RunUntil is Run bounded by an end time: events strictly after end are left
// unexecuted and simulated time is advanced to end (unless the queue drained
// earlier). Like Run, it is terminal for process goroutines: any process
// still blocked when the bound is reached is unwound so no goroutines leak;
// only pure callback events survive into a later Run/RunUntil call.
//
// RunUntil is the dispatch loop that owns the simulator's single-writer
// state: the obs region clock, the tenant register, and the mailbox queues
// are only touched from code running synchronously under it (simlint's
// singlewriter analyzer enforces this).
//
//lint:singlewriter region-clock
//lint:singlewriter tenant-register
//lint:singlewriter kernel-mailbox
func (k *Kernel) RunUntil(end Time) error {
	if k.running {
		panic("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	if k.obs != nil {
		// The scheduler loop itself — heap pops, switch overhead — accrues
		// to "sim"; each dispatch switches the region clock to the
		// subsystem of what it dispatches and back. Every wall instant of
		// the loop lands in exactly one bucket, so the report's shares sum
		// to the run time by construction.
		k.obs.SwitchTo(obs.SubsysSim)
		if k.obs.LabelsEnabled() {
			obs.LabelGoroutine(obs.SubsysSim, 0)
		}
	}
	for !k.stopped && k.procErr == nil && k.events.Len() > 0 {
		ev := k.events.pop()
		if ev.cancelled {
			continue
		}
		if ev.at > end {
			k.now = end
			// Put it back for a potential later RunUntil with a larger bound.
			k.events.push(ev)
			break
		}
		k.now = ev.at
		if k.obs != nil {
			k.obs.CountEvent(int64(k.now))
		}
		switch {
		case ev.proc != nil:
			if k.obs != nil {
				k.obs.SwitchTo(ev.proc.subsys)
				k.resume(ev.proc, signalWake)
				k.obs.SwitchTo(obs.SubsysSim)
			} else {
				k.resume(ev.proc, signalWake)
			}
		case ev.fn != nil:
			if k.obs != nil {
				k.obs.SwitchTo(ev.subsys)
			}
			k.tenant = ev.tenant
			ev.fn()
			k.tenant = 0
			if k.obs != nil {
				k.obs.SwitchTo(obs.SubsysSim)
			}
		}
	}
	k.killAll()
	if k.obs != nil {
		// Post-drain work (result assembly, teardown) is harness territory.
		k.obs.SwitchTo(obs.SubsysSetup)
	}
	switch {
	case k.procErr != nil:
		return k.procErr
	case k.stopped:
		return ErrStopped
	default:
		return nil
	}
}

// resume transfers control to p and blocks until p yields it back. A doomed
// process (see Kill) is resumed with a kill signal regardless of sig.
func (k *Kernel) resume(p *Proc, sig signal) {
	if p.finished {
		return
	}
	if p.doomed {
		sig = signalKill
	}
	// The tenant register follows control: everything the process does —
	// including telemetry emitted from inside its blocking primitives — is
	// attributed to its tenant. The kernel goroutine blocks on yield while
	// the process runs, so the handoff is race-free.
	k.tenant = p.tenant
	p.resume <- sig
	<-k.yield
	k.tenant = 0
}

// Kill unwinds a single process: the next time the scheduler would resume p
// (an event is scheduled immediately, so at the latest at the current time),
// it receives a kill signal and panics the errKilled sentinel out of its
// blocking primitive, running any deferred cleanups on the way out. Kill
// models a host crash taking its processes down mid-simulation; it must be
// called from scheduler context (a timer callback or another process), never
// from p itself. Killing a finished process is a no-op.
func (k *Kernel) Kill(p *Proc) {
	if p == nil || p.finished || p.doomed || !p.started {
		return
	}
	p.doomed = true
	if k.tel != nil {
		k.Emit(telemetry.Event{Kind: telemetry.KindProcKilled, Name: p.name, Tenant: p.tenant})
	}
	k.schedule(k.now, nil, p)
}

// killAll unwinds every live process goroutine by resuming it with a kill
// signal, which panics errKilled inside the blocking primitive; the process
// wrapper recovers it and hands control back. This guarantees Run leaves no
// goroutines behind, per the "never start a goroutine you cannot stop" rule.
func (k *Kernel) killAll() {
	for _, p := range k.procs {
		if !p.finished && p.started {
			k.resume(p, signalKill)
		}
	}
	k.procs = k.procs[:0]
	k.liveProc = 0
}

// failProc records a process failure; the first failure aborts Run.
func (k *Kernel) failProc(p *Proc, r any) {
	if k.procErr == nil {
		k.procErr = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
	}
}
