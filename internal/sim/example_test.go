package sim_test

import (
	"fmt"
	"time"

	"wadc/internal/sim"
)

// ExampleKernel shows the basic process model: two simulated processes
// rendezvous through a mailbox while simulated time advances only through
// blocking primitives.
func ExampleKernel() {
	k := sim.NewKernel()
	mb := sim.NewMailbox(k, "jobs")
	k.Spawn("producer", func(p *sim.Proc) {
		p.Hold(2 * time.Second)
		mb.Send("hello", sim.PriorityData)
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		msg := mb.Recv(p)
		fmt.Printf("got %q at %v\n", msg, p.Now())
	})
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output: got "hello" at 2.000s
}

// ExampleResource shows facility contention: a capacity-one resource
// serialises its users in priority order.
func ExampleResource() {
	k := sim.NewKernel()
	nic := sim.NewResource(k, "nic", 1)
	for _, name := range []string{"a", "b"} {
		name := name
		k.Spawn(name, func(p *sim.Proc) {
			nic.Use(p, sim.PriorityData, 3*time.Second)
			fmt.Printf("%s done at %v\n", name, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// a done at 3.000s
	// b done at 6.000s
}
