package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		tm   Time
		secs float64
	}{
		{"zero", 0, 0},
		{"one second", Second, 1},
		{"90 minutes", 90 * Minute, 5400},
		{"one ms", Millisecond, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tm.Seconds(); got != tt.secs {
				t.Errorf("Seconds() = %v, want %v", got, tt.secs)
			}
			if got := FromSeconds(tt.secs); got != tt.tm {
				t.Errorf("FromSeconds(%v) = %v, want %v", tt.secs, got, tt.tm)
			}
		})
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := 10 * Second
	if got := tm.Add(500 * time.Millisecond); got != 10*Second+500*Millisecond {
		t.Errorf("Add = %v", got)
	}
	if got := (12 * Second).Sub(10 * Second); got != 2*time.Second {
		t.Errorf("Sub = %v", got)
	}
	if got := (90 * Second).String(); got != "90.000s" {
		t.Errorf("String = %q", got)
	}
	if got := FromDuration(3 * time.Second); got != 3*Second {
		t.Errorf("FromDuration = %v", got)
	}
	if got := (3 * Second).Duration(); got != 3*time.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestCallbackOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(2*time.Second, func() { order = append(order, 2) })
	k.After(1*time.Second, func() { order = append(order, 1) })
	k.After(3*time.Second, func() { order = append(order, 3) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 3*Second {
		t.Errorf("final time = %v", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Second, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestHoldAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at1, at2 Time
	k.Spawn("holder", func(p *Proc) {
		p.Hold(5 * time.Second)
		at1 = p.Now()
		p.Hold(2500 * time.Millisecond)
		at2 = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at1 != 5*Second || at2 != 7500*Millisecond {
		t.Errorf("times = %v, %v", at1, at2)
	}
}

func TestHoldNegativeClamped(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Hold(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative hold advanced time to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestHoldUntil(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.HoldUntil(10 * Second)
		if p.Now() != 10*Second {
			t.Errorf("HoldUntil: now = %v", p.Now())
		}
		p.HoldUntil(5 * Second) // in the past: no-op
		if p.Now() != 10*Second {
			t.Errorf("HoldUntil past moved time: %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	k := NewKernel()
	var log []string
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Hold(2 * time.Second)
			log = append(log, fmt.Sprintf("a@%v", p.Now()))
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < 2; i++ {
			p.Hold(3 * time.Second)
			log = append(log, fmt.Sprintf("b@%v", p.Now()))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// At t=6 both wake; b's wake event was scheduled (at t=3) before a's
	// (at t=4), so FIFO tie-breaking runs b first.
	want := "a@2.000s b@3.000s a@4.000s b@6.000s a@6.000s"
	if got := strings.Join(log, " "); got != want {
		t.Errorf("log = %q, want %q", got, want)
	}
}

func TestRunUntilBounds(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.After(time.Second, func() { fired++ })
	k.After(10*time.Second, func() { fired++ })
	if err := k.RunUntil(5 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Now() != 5*Second {
		t.Errorf("now = %v, want 5s", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Every(time.Second, func() {
		count++
		if count == 3 {
			k.Stop()
		}
	})
	err := k.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}

func TestEveryPeriodAndStop(t *testing.T) {
	k := NewKernel()
	var times []Time
	var timer *Timer
	timer = k.Every(10*time.Second, func() {
		times = append(times, k.Now())
		if len(times) == 4 {
			timer.Stop()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 4 || times[0] != 10*Second || times[3] != 40*Second {
		t.Errorf("times = %v", times)
	}
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	NewKernel().Every(0, func() {})
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	timer := k.After(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Error("Stop returned false for pending timer")
	}
	if timer.Stop() {
		t.Error("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("stopped timer fired")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Error("nil timer Stop returned true")
	}
}

func TestAtClampsPast(t *testing.T) {
	k := NewKernel()
	var firedAt Time = -1
	k.After(10*time.Second, func() {
		k.At(5*Second, func() { firedAt = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 10*Second {
		t.Errorf("past At fired at %v, want clamped to 10s", firedAt)
	}
}

func TestProcessPanicReported(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		p.Hold(time.Second)
		panic("boom")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "bad") {
		t.Errorf("Run = %v, want panic error mentioning process", err)
	}
}

func TestBlockedProcessesUnwoundAtEnd(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "never")
	k.Spawn("waiter", func(p *Proc) {
		m.Recv(p) // never satisfied
		t.Error("waiter returned from Recv")
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.liveProc != 0 {
		t.Errorf("liveProc = %d after Run, want 0 (goroutine leak)", k.liveProc)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10*time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	k.schedule(5*Second, func() {}, nil)
}

func TestDeterministicTrace(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		k := NewKernel(WithSeed(42), WithTracer(func(at Time, format string, args ...any) {
			fmt.Fprintf(&sb, "%v "+format+"\n", append([]any{at}, args...)...)
		}))
		m := NewMailbox(k, "mb")
		res := NewResource(k, "res", 1)
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
				p.Hold(time.Duration(k.Rand().Intn(1000)) * time.Millisecond)
				res.Acquire(p, PriorityData)
				p.Hold(100 * time.Millisecond)
				res.Release()
				m.Send(i, PriorityData)
			})
		}
		k.Spawn("collector", func(p *Proc) {
			for i := 0; i < 4; i++ {
				m.Recv(p)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different traces:\n%s\n---\n%s", a, b)
	}
}

func TestRandSeedChangesOutcome(t *testing.T) {
	draw := func(seed int64) int {
		k := NewKernel(WithSeed(seed))
		return k.Rand().Intn(1 << 30)
	}
	if draw(1) == draw(2) {
		t.Error("different seeds produced identical draws (suspicious)")
	}
	if draw(7) != draw(7) {
		t.Error("same seed produced different draws")
	}
}

func TestConditionWaitFor(t *testing.T) {
	k := NewKernel()
	c := NewCondition(k)
	ready := false
	var doneAt Time
	k.Spawn("waiter", func(p *Proc) {
		c.WaitFor(p, func() bool { return ready })
		doneAt = p.Now()
	})
	k.Spawn("setter", func(p *Proc) {
		p.Hold(3 * time.Second)
		c.Signal() // spurious: ready still false
		p.Hold(2 * time.Second)
		ready = true
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneAt != 5*Second {
		t.Errorf("waiter finished at %v, want 5s", doneAt)
	}
}

func TestConditionSignalWakesAll(t *testing.T) {
	k := NewKernel()
	c := NewCondition(k)
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.After(time.Second, func() { c.Signal() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	k := NewKernel()
	panicked := false
	k.After(time.Second, func() {
		defer func() { panicked = recover() != nil }()
		_ = k.Run()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !panicked {
		t.Error("reentrant Run did not panic")
	}
}
