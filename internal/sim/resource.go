package sim

import (
	"container/heap"
	"fmt"
	"time"

	"wadc/internal/telemetry"
)

// Resource is a counted facility (CSIM "facility"): at most capacity holders
// at a time, with a priority wait queue (FIFO within priority). Hosts' NICs,
// CPUs and disks are Resources with capacity 1.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int
	queue    prioQueue
	seq      uint64

	// Utilisation accounting.
	busyTime   time.Duration // cumulative (holders × time)
	lastChange Time
	acquires   int64
}

// NewResource creates a resource with the given capacity (must be >= 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse returns the current number of holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.queue.Len() }

// Acquires returns the total number of successful acquisitions.
func (r *Resource) Acquires() int64 { return r.acquires }

// Utilization returns the mean fraction of capacity in use since the start
// of the simulation (0 if no time has passed).
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.k.now.Seconds() * float64(r.capacity)
	if elapsed == 0 {
		return 0
	}
	return r.busyTime.Seconds() / elapsed
}

func (r *Resource) account() {
	r.busyTime += time.Duration(int64(r.k.now-r.lastChange) * int64(r.inUse))
	r.lastChange = r.k.now
}

// Acquire blocks p until a unit of the resource is available, honouring
// priority order among waiters. Callers must pair it with Release.
func (r *Resource) Acquire(p *Proc, prio Priority) {
	if r.inUse < r.capacity && r.queue.Len() == 0 {
		r.grant()
		return
	}
	heap.Push(&r.queue, &item{value: p, prio: prio, seq: r.seq})
	r.seq++
	if r.k.tel != nil {
		r.k.Emit(telemetry.Event{Kind: telemetry.KindResourceWait, Name: r.name, Aux: p.name, Prio: int8(prio)})
	}
	p.block()
	// Our waker granted the unit on our behalf before scheduling the wake.
}

// TryAcquire acquires a unit without blocking; it reports success. Waiting
// processes are not bypassed: TryAcquire fails while anyone queues.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && r.queue.Len() == 0 {
		r.grant()
		return true
	}
	return false
}

func (r *Resource) grant() {
	r.account()
	r.inUse++
	r.acquires++
}

// Release returns one unit and hands it to the highest-priority waiter, if
// any. Safe to call from scheduler callbacks as well as processes.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.account()
	r.inUse--
	for r.queue.Len() > 0 && r.inUse < r.capacity {
		next := heap.Pop(&r.queue).(*item).value.(*Proc)
		if next.finished || next.doomed {
			// A waiter killed while queueing (host crash) must not be granted
			// a unit it can never release; drop it and try the next waiter.
			continue
		}
		r.grant()
		if r.k.tel != nil {
			r.k.Emit(telemetry.Event{Kind: telemetry.KindResourceGrant, Name: r.name, Aux: next.name})
		}
		r.k.schedule(r.k.now, nil, next)
		break
	}
}

// Use acquires the resource, holds it for simulated duration d, and releases
// it — the common "occupy a facility for a service time" pattern.
func (r *Resource) Use(p *Proc, prio Priority, d time.Duration) {
	r.Acquire(p, prio)
	defer r.Release()
	p.Hold(d)
}
