package sim

import (
	"testing"
	"time"
)

func TestRunUntilResume(t *testing.T) {
	// RunUntil leaves future events intact; a second call with a larger
	// bound executes them.
	k := NewKernel()
	var fired []Time
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 5 * time.Second} {
		k.After(d, func() { fired = append(fired, k.Now()) })
	}
	if err := k.RunUntil(2 * Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("after first bound: fired = %v", fired)
	}
	if err := k.RunUntil(10 * Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 5*Second {
		t.Errorf("after second bound: fired = %v", fired)
	}
}

func TestRunUntilThenRun(t *testing.T) {
	k := NewKernel()
	count := 0
	k.After(10*time.Second, func() { count++ })
	if err := k.RunUntil(Second); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatal("event fired early")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count = %d", count)
	}
}

func TestUtilizationMidRun(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	k.Spawn("u", func(p *Proc) {
		r.Acquire(p, PriorityData)
		p.Hold(10 * time.Second)
		r.Release()
	})
	k.After(5*time.Second, func() {
		if got := r.Utilization(); got < 0.99 {
			t.Errorf("mid-run utilization = %v, want ~1.0", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromCallback(t *testing.T) {
	// Spawning a process from a scheduler callback must work (the bootstrap
	// pattern core.Run uses).
	k := NewKernel()
	var done Time
	k.After(time.Second, func() {
		k.Spawn("late", func(p *Proc) {
			p.Hold(2 * time.Second)
			done = p.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3*Second {
		t.Errorf("done = %v, want 3s", done)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childDone Time
	k.Spawn("parent", func(p *Proc) {
		p.Hold(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Hold(time.Second)
			childDone = c.Now()
		})
		p.Hold(5 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childDone != 2*Second {
		t.Errorf("childDone = %v, want 2s", childDone)
	}
}

func TestRunUntilUnwindsProcesses(t *testing.T) {
	// Run/RunUntil are terminal for process goroutines: when they return,
	// every still-blocked process has been unwound so no goroutines leak.
	// A receiver blocked across the bound therefore never completes, and
	// only pure callback events survive into a later RunUntil call.
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var got any
	k.Spawn("recv", func(p *Proc) { got = m.Recv(p) })
	k.After(10*time.Second, func() { m.Send("late", PriorityData) })
	if err := k.RunUntil(Second); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("received early")
	}
	if k.liveProc != 0 {
		t.Errorf("liveProc = %d after RunUntil, want 0", k.liveProc)
	}
	// The message still gets sent by the surviving callback, but the
	// receiver is gone: it queues in the mailbox.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("unwound receiver completed: got = %v", got)
	}
	if m.Len() != 1 {
		t.Errorf("mailbox len = %d, want 1 (undelivered)", m.Len())
	}
}
