package sim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: popping the event queue yields events sorted by (time, seq).
func TestEventQueueOrderingProperty(t *testing.T) {
	prop := func(times []int16) bool {
		var q eventQueue
		for i, tv := range times {
			at := Time(tv)
			if at < 0 {
				at = -at
			}
			q.push(&event{at: at, seq: uint64(i)})
		}
		var prevAt Time = -1
		var prevSeq uint64
		for q.Len() > 0 {
			ev := q.pop()
			if ev.at < prevAt || (ev.at == prevAt && ev.seq <= prevSeq && prevAt >= 0) {
				return false
			}
			if ev.at > prevAt {
				prevAt, prevSeq = ev.at, ev.seq
			} else {
				prevSeq = ev.seq
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the priority queue delivers by descending priority, FIFO within
// equal priorities.
func TestPrioQueueOrderingProperty(t *testing.T) {
	prop := func(prios []uint8) bool {
		var q prioQueue
		for i, pv := range prios {
			heap.Push(&q, &item{value: i, prio: Priority(pv % 3), seq: uint64(i)})
		}
		var got []*item
		for q.Len() > 0 {
			got = append(got, heap.Pop(&q).(*item))
		}
		for i := 1; i < len(got); i++ {
			if got[i].prio > got[i-1].prio {
				return false
			}
			if got[i].prio == got[i-1].prio && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(prios)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: removing a random subset of events via Timer.Stop leaves the
// remaining events still delivered in order, none of the cancelled ones fire.
func TestTimerStopProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		count := int(n%20) + 1
		fired := make([]bool, count)
		timers := make([]*Timer, count)
		delays := make([]int, count)
		for i := 0; i < count; i++ {
			i := i
			delays[i] = rng.Intn(1000) + 1
			timers[i] = k.At(Time(delays[i])*Millisecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = timers[i].Stop()
				if !cancelled[i] {
					return false // Stop of a pending timer must succeed
				}
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with a capacity-1 resource and random service times, total busy
// time equals the sum of service times (work conservation), and the final
// completion time equals that sum as well when all arrive at t=0.
func TestResourceWorkConservationProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		r := NewResource(k, "res", 1)
		count := int(n%10) + 1
		var total Time
		for i := 0; i < count; i++ {
			d := Time(rng.Intn(5000)+1) * Millisecond
			total += d
			k.Spawn("u", func(p *Proc) { r.Use(p, PriorityData, d.Duration()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return k.Now() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: messages sent with random priorities are received in a valid
// order: a stable sort by descending priority of the send order.
func TestMailboxOrderProperty(t *testing.T) {
	prop := func(prios []uint8) bool {
		k := NewKernel()
		m := NewMailbox(k, "mb")
		type msg struct {
			idx  int
			prio Priority
		}
		var want []msg
		for i, pv := range prios {
			p := Priority(pv % 3)
			m.Send(msg{i, p}, p)
			want = append(want, msg{i, p})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].prio > want[b].prio })
		ok := true
		k.Spawn("recv", func(p *Proc) {
			for i := range want {
				got := m.Recv(p).(msg)
				if got != want[i] {
					ok = false
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
