package sim

import (
	"container/heap"

	"wadc/internal/obs"
)

// event is a scheduled occurrence: at time at, either run fn (a pure callback
// executed in the scheduler's own goroutine) or wake proc (transfer control to
// a blocked process goroutine).
type event struct {
	at   Time
	seq  uint64 // insertion sequence, breaks ties deterministically
	fn   func()
	proc *Proc
	// tenant is the tenant register captured when the event was scheduled,
	// restored while a pure callback runs so telemetry emitted from timer
	// context is attributed to the tenant that armed the timer. (Process
	// wake-ups take the tenant from the process itself instead.)
	tenant int32
	// subsys is the obs region captured when a pure callback was
	// scheduled, so wall time spent in timer callbacks is attributed to
	// the subsystem that armed the timer. Only written when a recorder is
	// attached; process wake-ups use the process's own region instead.
	subsys obs.Subsystem
	// index within the heap, maintained by the heap.Interface methods so
	// that cancelled events can be removed in O(log n).
	index     int
	cancelled bool
}

// eventQueue is a min-heap of events ordered by (at, seq). The seq tie-break
// makes event ordering — and therefore the whole simulation — deterministic
// for a fixed program and seed.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// push inserts an event maintaining heap order.
func (q *eventQueue) push(ev *event) { heap.Push(q, ev) }

// pop removes and returns the earliest event.
func (q *eventQueue) pop() *event { return heap.Pop(q).(*event) }

// remove deletes the event at index i.
func (q *eventQueue) remove(i int) { heap.Remove(q, i) }

// Timer is a handle to a scheduled callback; Stop cancels it if it has not
// yet fired. For periodic timers (Kernel.Every), Stop may be called from
// inside the callback to end the series.
type Timer struct {
	k        *Kernel
	ev       *event
	periodic bool
	stopped  bool
}

// Stop cancels the timer. It reports whether any future callback was
// prevented: true when a pending one-shot was cancelled or a periodic timer
// was ended, false when the timer already fired or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	cancelled := false
	if t.ev != nil && !t.ev.cancelled && t.ev.index >= 0 {
		t.ev.cancelled = true
		t.k.events.remove(t.ev.index)
		cancelled = true
	}
	return cancelled || t.periodic
}
