package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestMailboxFIFOWithinPriority(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Hold(time.Second)
		for i := 0; i < 5; i++ {
			m.Send(i, PriorityData)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Errorf("got = %v", got)
	}
}

func TestMailboxPriorityOvertakes(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var got []string
	// Queue up messages before the receiver starts: a barrier message sent
	// last must be delivered first (paper §2.2: barrier messages get
	// priority so they are not stuck behind large data transfers).
	m.Send("data1", PriorityData)
	m.Send("data2", PriorityData)
	m.Send("control", PriorityControl)
	m.Send("barrier", PriorityBarrier)
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, m.Recv(p).(string))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "[barrier control data1 data2]"
	if fmt.Sprint(got) != want {
		t.Errorf("got = %v, want %v", got, want)
	}
}

func TestMailboxMultipleWaitersAllServed(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	served := 0
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Recv(p)
			served++
		})
	}
	k.After(time.Second, func() {
		// Three sends arrive "at once"; every waiter must be served even
		// though each Send wakes only one of them.
		m.Send(1, PriorityData)
		m.Send(2, PriorityData)
		m.Send(3, PriorityData)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if served != 3 {
		t.Errorf("served = %d, want 3", served)
	}
}

func TestMailboxRecvBlocksUntilSend(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var recvAt Time
	k.Spawn("recv", func(p *Proc) {
		m.Recv(p)
		recvAt = p.Now()
	})
	k.After(7*time.Second, func() { m.Send("x", PriorityData) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvAt != 7*Second {
		t.Errorf("recvAt = %v, want 7s", recvAt)
	}
}

func TestMailboxTryRecvAndPeek(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	if _, ok := m.TryRecv(); ok {
		t.Error("TryRecv on empty mailbox returned ok")
	}
	if _, ok := m.Peek(); ok {
		t.Error("Peek on empty mailbox returned ok")
	}
	m.Send("a", PriorityData)
	m.Send("b", PriorityBarrier)
	if v, ok := m.Peek(); !ok || v != "b" {
		t.Errorf("Peek = %v, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
	if v, ok := m.TryRecv(); !ok || v != "b" {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
	if v, ok := m.TryRecv(); !ok || v != "a" {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
	if m.Name() != "mb" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestPriorityString(t *testing.T) {
	tests := []struct {
		p    Priority
		want string
	}{
		{PriorityData, "data"},
		{PriorityControl, "control"},
		{PriorityBarrier, "barrier"},
		{Priority(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Priority(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}
