package sim

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, PriorityData, 10*time.Second)
			done = append(done, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10 * Second, 20 * Second, 30 * Second}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
	if r.Acquires() != 3 {
		t.Errorf("Acquires = %d", r.Acquires())
	}
}

func TestResourcePriorityGrantOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	var order []string
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, PriorityData)
		p.Hold(10 * time.Second)
		r.Release()
	})
	spawnAt := func(name string, prio Priority, delay time.Duration) {
		k.Spawn(name, func(p *Proc) {
			p.Hold(delay)
			r.Acquire(p, prio)
			order = append(order, name)
			r.Release()
		})
	}
	spawnAt("low1", PriorityData, time.Second)
	spawnAt("low2", PriorityData, 2*time.Second)
	spawnAt("barrier", PriorityBarrier, 3*time.Second)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "[barrier low1 low2]"
	if fmt.Sprint(order) != want {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestResourceCapacityN(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, PriorityData, 10*time.Second)
			done = append(done, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two run 0-10s, two run 10-20s.
	want := []Time{10 * Second, 10 * Second, 20 * Second, 20 * Second}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	if r.InUse() != 1 {
		t.Errorf("InUse = %d", r.InUse())
	}
	r.Release()
	if r.InUse() != 0 {
		t.Errorf("InUse after release = %d", r.InUse())
	}
}

func TestResourceTryAcquireDoesNotBypassWaiters(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, PriorityData)
		p.Hold(5 * time.Second)
		r.Release()
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Hold(time.Second)
		r.Acquire(p, PriorityData)
		p.Hold(5 * time.Second)
		r.Release()
	})
	var bypassed bool
	k.After(6*time.Second, func() {
		// At t=6 the holder has released and the waiter holds the unit.
		// But even at a moment when the unit has been released and handed
		// to a waiter, TryAcquire must fail rather than steal it.
		bypassed = r.TryAcquire()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bypassed {
		t.Error("TryAcquire stole the resource from a queued waiter")
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	k.Spawn("u", func(p *Proc) {
		r.Use(p, PriorityData, 30*time.Second)
		p.Hold(70 * time.Second) // idle tail
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.Utilization(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.3", got)
	}
	if r.QueueLen() != 0 {
		t.Errorf("QueueLen = %d", r.QueueLen())
	}
	if r.Name() != "disk" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewResource(NewKernel(), "bad", 0)
}

func TestResourceUtilizationZeroTime(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic", 1)
	if got := r.Utilization(); got != 0 {
		t.Errorf("Utilization at t=0 = %v", got)
	}
}
