package sim

import (
	"container/heap"

	"wadc/internal/telemetry"
)

// Priority orders competing messages and resource requests. Higher values are
// served first; ties are FIFO. The three levels mirror the paper's protocol:
// bulk data transfers, small control messages (demands, relocations), and
// barrier messages, which the paper explicitly gives the highest priority so
// that a change-over barrier is never stuck behind a large data transfer.
type Priority int

const (
	// PriorityData is the default priority for bulk data messages.
	PriorityData Priority = 0
	// PriorityControl is used for demands and other small control traffic.
	PriorityControl Priority = 1
	// PriorityBarrier is the highest priority, reserved for the global
	// algorithm's change-over barrier messages (paper §2.2).
	PriorityBarrier Priority = 2
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityData:
		return "data"
	case PriorityControl:
		return "control"
	case PriorityBarrier:
		return "barrier"
	default:
		return "unknown"
	}
}

// item is an entry in a priority queue: payload plus ordering key.
type item struct {
	value any
	prio  Priority
	seq   uint64
	index int
}

// prioQueue is a max-heap on (prio, -seq): higher priority first, FIFO within
// a priority level.
type prioQueue []*item

func (q prioQueue) Len() int { return len(q) }
func (q prioQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q prioQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *prioQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *prioQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Mailbox is an unbounded, priority-ordered message queue between simulated
// processes. Send never blocks; Recv blocks the calling process until a
// message is available. Within a priority level delivery is FIFO.
type Mailbox struct {
	k       *Kernel
	name    string
	queue   prioQueue
	seq     uint64
	waiters []*Proc
}

// NewMailbox creates a mailbox named name on kernel k. The waiter queue is
// pre-sized: Recv carries a zero allocation budget, so its append must land
// in existing capacity (wakeOne compacts in place to preserve it).
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name, waiters: make([]*Proc, 0, 4)}
}

// Name returns the mailbox name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return m.queue.Len() }

// Send enqueues msg at the given priority and wakes one waiting receiver, if
// any. It is safe to call from scheduler callbacks as well as processes.
//
//lint:hotpath
//lint:allocbudget 1 one &item node per enqueued message; it rides the heap.Push interface
func (m *Mailbox) Send(msg any, prio Priority) {
	if m.k.tel != nil {
		m.k.Emit(telemetry.Event{Kind: telemetry.KindMailboxSend, Name: m.name, Prio: int8(prio)})
	}
	heap.Push(&m.queue, &item{value: msg, prio: prio, seq: m.seq})
	m.seq++
	m.wakeOne()
}

// wakeOne wakes the first still-live waiter, discarding waiters that were
// killed while blocked (their wake would be a lost token and the message
// would strand).
func (m *Mailbox) wakeOne() {
	for len(m.waiters) > 0 {
		p := m.waiters[0]
		// Compact in place rather than re-slicing from the front: slicing
		// strands capacity at the head of the backing array, which forces
		// Recv's append to reallocate and busts its zero allocation budget.
		n := copy(m.waiters, m.waiters[1:])
		m.waiters[n] = nil
		m.waiters = m.waiters[:n]
		if p.finished || p.doomed {
			continue
		}
		m.k.schedule(m.k.now, nil, p)
		return
	}
}

// Recv blocks p until a message is available, then returns the
// highest-priority (FIFO within priority) message.
//
//lint:hotpath
//lint:allocbudget 0 pop and hand-off reuse the queued item; the receive path must stay allocation-free
func (m *Mailbox) Recv(p *Proc) any {
	for m.queue.Len() == 0 {
		m.waiters = append(m.waiters, p)
		p.block()
	}
	it := heap.Pop(&m.queue).(*item)
	if m.k.tel != nil {
		m.k.Emit(telemetry.Event{Kind: telemetry.KindMailboxRecv, Name: m.name, Prio: int8(it.prio)})
	}
	// If messages remain and other receivers are waiting, pass the wake on:
	// Send wakes only one waiter, so without this hand-off a second queued
	// message could strand a second waiter.
	if m.queue.Len() > 0 {
		m.wakeOne()
	}
	return it.value
}

// Drain discards every queued message and returns how many were dropped. A
// host crash purges the mailboxes of the processes it kills: buffered but
// unconsumed messages are memory, and memory is lost.
func (m *Mailbox) Drain() int {
	n := m.queue.Len()
	m.queue = m.queue[:0]
	return n
}

// TryRecv returns the highest-priority message if one is queued, without
// blocking. The second result reports whether a message was returned.
func (m *Mailbox) TryRecv() (any, bool) {
	if m.queue.Len() == 0 {
		return nil, false
	}
	return heap.Pop(&m.queue).(*item).value, true
}

// Peek returns the highest-priority queued message without removing it.
func (m *Mailbox) Peek() (any, bool) {
	if m.queue.Len() == 0 {
		return nil, false
	}
	return m.queue[0].value, true
}
