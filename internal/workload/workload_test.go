package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateShape(t *testing.T) {
	images := Generate(1, 8, DefaultConfig())
	if len(images) != 8 {
		t.Fatalf("servers = %d", len(images))
	}
	for s, seq := range images {
		if len(seq) != DefaultImagesPerServer {
			t.Fatalf("server %d has %d images", s, len(seq))
		}
		for i, im := range seq {
			if im.Index != i {
				t.Errorf("server %d image %d index = %d", s, i, im.Index)
			}
			if im.Bytes < MinBytes {
				t.Errorf("image below floor: %d", im.Bytes)
			}
		}
	}
}

func TestGenerateDistribution(t *testing.T) {
	images := Generate(42, 20, DefaultConfig())
	var sum, sumSq, n float64
	for _, seq := range images {
		for _, im := range seq {
			f := float64(im.Bytes)
			sum += f
			sumSq += f * f
			n++
		}
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-float64(DefaultMeanBytes)) > 0.03*float64(DefaultMeanBytes) {
		t.Errorf("mean = %.0f, want ~%d", mean, DefaultMeanBytes)
	}
	if math.Abs(sd/mean-0.25) > 0.05 {
		t.Errorf("relative sd = %.3f, want ~0.25", sd/mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 2, DefaultConfig())
	b := Generate(7, 2, DefaultConfig())
	for s := range a {
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatalf("nondeterministic at [%d][%d]", s, i)
			}
		}
	}
}

func TestGenerateZeroConfigDefaults(t *testing.T) {
	images := Generate(1, 1, Config{SpreadFrac: -1})
	if len(images[0]) != DefaultImagesPerServer {
		t.Errorf("default count = %d", len(images[0]))
	}
	if MeanBytes(images) < MinBytes {
		t.Errorf("mean = %d", MeanBytes(images))
	}
}

func TestComposeBytes(t *testing.T) {
	if ComposeBytes(100, 200) != 200 || ComposeBytes(300, 200) != 300 {
		t.Error("ComposeBytes wrong")
	}
}

func TestComposeDuration(t *testing.T) {
	got := ComposeDuration(1000, 2000, 7*time.Microsecond)
	if got != 14*time.Millisecond {
		t.Errorf("duration = %v", got)
	}
	if DefaultComposeDuration(1, 2) != 14*time.Microsecond {
		t.Errorf("default duration = %v", DefaultComposeDuration(1, 2))
	}
}

func TestMeanBytesEmpty(t *testing.T) {
	if MeanBytes(nil) != DefaultMeanBytes {
		t.Error("empty mean wrong")
	}
}

func TestImagePixels(t *testing.T) {
	if (Image{Bytes: 99}).Pixels() != 99 {
		t.Error("pixels != bytes")
	}
}

// Property: composition is commutative, associative in size, and the result
// never shrinks below either input.
func TestComposeProperty(t *testing.T) {
	prop := func(a, b, c uint32) bool {
		x, y, z := int64(a), int64(b), int64(c)
		if ComposeBytes(x, y) != ComposeBytes(y, x) {
			return false
		}
		if ComposeBytes(ComposeBytes(x, y), z) != ComposeBytes(x, ComposeBytes(y, z)) {
			return false
		}
		r := ComposeBytes(x, y)
		return r >= x && r >= y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
