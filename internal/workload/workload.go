// Package workload generates the paper's evaluation workload: sequences of
// satellite images served by geographically distributed sites (the AVHRR
// Pathfinder-style composition task). The paper surveyed over 1000 hurricane
// images from 15 web sites and found sizes "fit a normal distribution with a
// mean close to 128KB and a variance of 25%"; each server delivers a sequence
// of 180 images drawn from that distribution.
package workload

import (
	"math/rand"
	"time"

	"wadc/internal/netmodel"
)

// Defaults from the paper.
const (
	// DefaultImagesPerServer is the sequence length per data source.
	DefaultImagesPerServer = 180
	// DefaultMeanBytes is the mean image size (128 KB).
	DefaultMeanBytes int64 = 128 * 1024
	// DefaultSpreadFrac is the paper's "variance of 25%", read as a relative
	// spread: the standard deviation is 25 % of the mean.
	DefaultSpreadFrac = 0.25
	// MinBytes floors image sizes so the normal draw cannot produce
	// degenerate or negative sizes.
	MinBytes int64 = 4 * 1024
)

// Image is one data partition: a satellite image identified by its position
// in the server's sequence. One byte is one pixel.
type Image struct {
	Index int
	Bytes int64
}

// Pixels returns the pixel count (1 byte/pixel).
func (im Image) Pixels() int64 { return im.Bytes }

// Config parameterises workload generation.
type Config struct {
	ImagesPerServer int
	MeanBytes       int64
	SpreadFrac      float64
}

// DefaultConfig returns the paper's workload parameters.
func DefaultConfig() Config {
	return Config{
		ImagesPerServer: DefaultImagesPerServer,
		MeanBytes:       DefaultMeanBytes,
		SpreadFrac:      DefaultSpreadFrac,
	}
}

// Generate produces the image sequences for numServers servers,
// deterministically from seed. Result[s][i] is server s's i-th image.
func Generate(seed int64, numServers int, cfg Config) [][]Image {
	if cfg.ImagesPerServer <= 0 {
		cfg.ImagesPerServer = DefaultImagesPerServer
	}
	if cfg.MeanBytes <= 0 {
		cfg.MeanBytes = DefaultMeanBytes
	}
	if cfg.SpreadFrac < 0 {
		cfg.SpreadFrac = DefaultSpreadFrac
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Image, numServers)
	for s := range out {
		seq := make([]Image, cfg.ImagesPerServer)
		for i := range seq {
			size := int64(float64(cfg.MeanBytes) * (1 + rng.NormFloat64()*cfg.SpreadFrac))
			if size < MinBytes {
				size = MinBytes
			}
			seq[i] = Image{Index: i, Bytes: size}
		}
		out[s] = seq
	}
	return out
}

// ComposeBytes returns the size of composing two images: "if the images are
// of different sizes, the smaller image is expanded to the size of the
// larger image. The resulting image is the same size as the larger image."
func ComposeBytes(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ComposeDuration returns the CPU time of one pairwise composition at the
// given per-pixel cost: the comparison touches every pixel of the (expanded)
// result.
func ComposeDuration(a, b int64, perPixel time.Duration) time.Duration {
	return time.Duration(ComposeBytes(a, b)) * perPixel
}

// DefaultComposeDuration applies the paper's 7 µs/pixel.
func DefaultComposeDuration(a, b int64) time.Duration {
	return ComposeDuration(a, b, netmodel.DefaultComposePerPixel)
}

// MeanBytes returns the empirical mean image size across all sequences,
// used to parameterise the placement cost model.
func MeanBytes(images [][]Image) int64 {
	var sum, n int64
	for _, seq := range images {
		for _, im := range seq {
			sum += im.Bytes
			n++
		}
	}
	if n == 0 {
		return DefaultMeanBytes
	}
	return sum / n
}
