// Package metrics provides the summary statistics used to report the
// paper's experiments: per-configuration speedups over the download-all
// baseline, medians and means across network configurations, and simple
// text rendering helpers for the figure harnesses.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median (0 for an empty slice).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (linear interpolation between
// closest ranks). p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := SortedCopy(xs)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the minimum (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sumSq float64
	for _, x := range xs {
		d := x - m
		sumSq += d * d
	}
	return math.Sqrt(sumSq / float64(len(xs)))
}

// JainIndex returns Jain's fairness index of the allocations:
// (Σx)² / (n·Σx²), in (0, 1] with 1 meaning perfectly equal shares. It is
// the cross-tenant fairness statistic on per-tenant iteration throughput.
// An empty slice yields 0; an all-zero slice (everyone equally starved)
// yields 1.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// SortedCopy returns an ascending copy of xs.
func SortedCopy(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}

// Summary bundles the common statistics of one sample.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	P25, P75     float64
	StdDev       float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N: len(xs), Mean: Mean(xs), Median: Median(xs),
		Min: Min(xs), Max: Max(xs),
		P25: Percentile(xs, 25), P75: Percentile(xs, 75),
		StdDev: StdDev(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f min=%.2f p25=%.2f p75=%.2f max=%.2f sd=%.2f",
		s.N, s.Mean, s.Median, s.Min, s.P25, s.P75, s.Max, s.StdDev)
}

// Speedups returns base[i]/alg[i] for each configuration — "the performance
// of an algorithm on a particular configuration is measured as the speedup
// it achieves over the download-all strategy".
func Speedups(base, alg []float64) []float64 {
	if len(base) != len(alg) {
		panic(fmt.Sprintf("metrics: mismatched lengths %d vs %d", len(base), len(alg)))
	}
	out := make([]float64, len(base))
	for i := range base {
		if alg[i] <= 0 {
			out[i] = 0
			continue
		}
		out[i] = base[i] / alg[i]
	}
	return out
}

// Ratio returns a[i]/b[i] per configuration (used for global-vs-local
// comparisons).
func Ratio(a, b []float64) []float64 { return Speedups(a, b) }

// Sparkline renders xs as a compact unicode bar series, handy for showing
// sorted per-configuration speedups in terminal output.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := Min(xs), Max(xs)
	span := hi - lo
	var sb strings.Builder
	stride := float64(len(xs)) / float64(width)
	if stride < 1 {
		stride = 1
	}
	for i := 0.0; int(i) < len(xs) && sb.Len() < width*4; i += stride {
		x := xs[int(i)]
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// Table is a minimal fixed-width text table for figure output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == len(cells)-1 {
				sb.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
