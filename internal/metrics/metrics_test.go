package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Median(xs), 2.5) {
		t.Errorf("Median = %v", Median(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(1.25)) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty stats not zero")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {-5, 10}, {100, 50}, {105, 50}, {50, 30}, {25, 20}, {75, 40}, {12.5, 15},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almost(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SortedCopy(xs)
	if !sort.Float64sAreSorted(s) {
		t.Error("not sorted")
	}
	if xs[0] != 3 {
		t.Error("input mutated")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "median=2.50") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{100, 50}, []float64{25, 50})
	if got[0] != 4 || got[1] != 1 {
		t.Errorf("speedups = %v", got)
	}
	if got := Speedups([]float64{1}, []float64{0}); got[0] != 0 {
		t.Errorf("zero denominator = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	Speedups([]float64{1}, []float64{1, 2})
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline = %q (%d runes)", s, len([]rune(s)))
	}
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate sparkline not empty")
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", flat)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("alg", "speedup")
	tb.AddRow("global", 4.5)
	tb.AddRow("one-shot", 3.25)
	out := tb.String()
	if !strings.Contains(out, "global") || !strings.Contains(out, "4.50") || !strings.Contains(out, "3.25") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}

// Property: percentile is monotone in p and bounded by [Min, Max].
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a, b := math.Mod(math.Abs(p1), 100), math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
