package metrics

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBootstrapCIBracketsTruth(t *testing.T) {
	// Sample from a known distribution; the CI should bracket the true mean
	// and shrink with sample size.
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 20)
	large := make([]float64, 2000)
	for i := range small {
		small[i] = 10 + rng.NormFloat64()
	}
	for i := range large {
		large[i] = 10 + rng.NormFloat64()
	}
	ciSmall := MeanCI(small, 7)
	ciLarge := MeanCI(large, 7)
	for _, ci := range []CI{ciSmall, ciLarge} {
		if ci.Low > ci.Point || ci.Point > ci.High {
			t.Errorf("interval does not contain point: %v", ci)
		}
		if ci.Low > 10 || ci.High < 10 {
			t.Errorf("interval misses true mean 10: %v", ci)
		}
	}
	if (ciLarge.High - ciLarge.Low) >= (ciSmall.High - ciSmall.Low) {
		t.Errorf("CI did not shrink: small %v, large %v", ciSmall, ciLarge)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := MedianCI(xs, 42)
	b := MedianCI(xs, 42)
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
	c := MedianCI(xs, 43)
	if a == c {
		t.Error("different seeds gave identical resampling (suspicious)")
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	if ci := MeanCI(nil, 1); ci.Point != 0 || ci.Low != 0 || ci.High != 0 {
		t.Errorf("empty sample CI = %v", ci)
	}
	one := BootstrapCI([]float64{5}, Mean, 0.95, 10, 1)
	if one.Point != 5 || one.Low != 5 || one.High != 5 {
		t.Errorf("single-element CI = %v", one)
	}
	if s := one.String(); !strings.Contains(s, "5.00") {
		t.Errorf("String = %q", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad level did not panic")
		}
	}()
	BootstrapCI([]float64{1}, Mean, 1.5, 10, 1)
}

func TestBootstrapCIDefaultResamples(t *testing.T) {
	ci := BootstrapCI([]float64{1, 2, 3}, Mean, 0.9, 0, 1)
	if ci.Level != 0.9 || ci.Point != 2 {
		t.Errorf("ci = %v", ci)
	}
}
