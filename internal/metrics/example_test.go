package metrics_test

import (
	"fmt"

	"wadc/internal/metrics"
)

func ExampleSpeedups() {
	downloadAll := []float64{100, 120, 80} // completion times, seconds
	global := []float64{40, 60, 20}
	sp := metrics.Speedups(downloadAll, global)
	fmt.Printf("%.1f %.1f %.1f median=%.1f\n", sp[0], sp[1], sp[2], metrics.Median(sp))
	// Output: 2.5 2.0 4.0 median=2.5
}

func ExampleSummarize() {
	s := metrics.Summarize([]float64{1, 2, 3, 4, 5})
	fmt.Println(s)
	// Output: n=5 mean=3.00 median=3.00 min=1.00 p25=2.00 p75=4.00 max=5.00 sd=1.41
}

func ExampleTable() {
	t := metrics.NewTable("algorithm", "speedup")
	t.AddRow("one-shot", 1.75)
	t.AddRow("global", 2.39)
	fmt.Print(t.String())
	// Output:
	// algorithm  speedup
	// ---------  -------
	// one-shot   1.75
	// global     2.39
}

func ExamplePercentile() {
	xs := []float64{10, 20, 30, 40}
	fmt.Printf("%.0f %.0f\n", metrics.Percentile(xs, 0), metrics.Percentile(xs, 100))
	// Output: 10 40
}
