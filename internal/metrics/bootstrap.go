package metrics

import (
	"fmt"
	"math/rand"
)

// CI is a bootstrap confidence interval for a sample statistic.
type CI struct {
	Point float64 // the statistic on the full sample
	Low   float64
	High  float64
	Level float64 // e.g. 0.95
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f] @%.0f%%", c.Point, c.Low, c.High, c.Level*100)
}

// BootstrapCI estimates a confidence interval for stat(sample) by resampling
// with replacement. It is deterministic for a given seed. The figures report
// means and medians over 300 network configurations; the interval shows
// whether differences between algorithms are meaningful at that sample size.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, seed int64) CI {
	if len(xs) == 0 {
		return CI{Level: level}
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("metrics: confidence level %v out of (0,1)", level))
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for i := 0; i < resamples; i++ {
		for j := range buf {
			buf[j] = xs[rng.Intn(len(xs))]
		}
		stats[i] = stat(buf)
	}
	alpha := (1 - level) / 2
	return CI{
		Point: stat(xs),
		Low:   Percentile(stats, alpha*100),
		High:  Percentile(stats, (1-alpha)*100),
		Level: level,
	}
}

// MeanCI is BootstrapCI for the mean at 95 %.
func MeanCI(xs []float64, seed int64) CI { return BootstrapCI(xs, Mean, 0.95, 1000, seed) }

// MedianCI is BootstrapCI for the median at 95 %.
func MedianCI(xs []float64, seed int64) CI { return BootstrapCI(xs, Median, 0.95, 1000, seed) }
