// Package wadc_test benchmarks regenerate every figure of the paper's
// evaluation (§5) at reduced scale, plus microbenchmarks of the substrates.
// Each BenchmarkFigureN corresponds to the paper figure of the same number;
// the figures' full-scale numbers are produced by cmd/experiments and
// recorded in EXPERIMENTS.md. Benchmarks report the headline metric of the
// figure (median or mean speedup over download-all) via b.ReportMetric.
package wadc_test

import (
	"testing"
	"time"

	"wadc/internal/core"
	"wadc/internal/experiment"
	"wadc/internal/metrics"
	"wadc/internal/netmodel"
	"wadc/internal/placement"
	"wadc/internal/plan"
	"wadc/internal/sim"
	"wadc/internal/tenant"
	"wadc/internal/trace"
	"wadc/internal/workload"
)

// benchOpts is the reduced scale used by the figure benchmarks: enough
// configurations and iterations for the qualitative shape to hold while one
// benchmark iteration stays in the hundreds of milliseconds.
func benchOpts() experiment.Options {
	return experiment.Options{
		Configs:    4,
		Servers:    8,
		Iterations: 40,
		Seed:       1,
		Period:     5 * time.Minute,
	}
}

// BenchmarkFigure2TraceVariation regenerates Figure 2: the bandwidth
// variability of one synthetic host-pair trace over ten minutes and two
// days, with the >= 10 % change-interval calibration statistic.
func BenchmarkFigure2TraceVariation(b *testing.B) {
	var interval time.Duration
	for i := 0; i < b.N; i++ {
		r := experiment.Figure2(1, i)
		interval = r.Stats.SignificantChangeInterval
	}
	b.ReportMetric(interval.Seconds(), "change-interval-s")
}

// BenchmarkFigure6Relocation regenerates Figure 6: speedup of one-shot,
// global and local relocation over download-all across network
// configurations (paper: all relocation algorithms win; global achieves a
// median ~1.4x over one-shot and ~1.25x over local).
func BenchmarkFigure6Relocation(b *testing.B) {
	var r *experiment.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metrics.Median(r.Speedups["global"]), "global-median-speedup")
	b.ReportMetric(metrics.Median(r.Speedups["one-shot"]), "oneshot-median-speedup")
	b.ReportMetric(metrics.Median(r.Speedups["local"]), "local-median-speedup")
}

// BenchmarkFigure7ExtraLocations regenerates Figure 7: the local algorithm
// with k = 0..6 extra random candidate locations (paper: no significant
// difference).
func BenchmarkFigure7ExtraLocations(b *testing.B) {
	o := benchOpts()
	o.Configs = 2
	var r *experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Figure7(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgSpeedup[0], "k0-avg-speedup")
	b.ReportMetric(r.AvgSpeedup[len(r.AvgSpeedup)-1], "k6-avg-speedup")
}

// BenchmarkFigure8ServerScaling regenerates Figure 8: average speedup as the
// number of servers grows (paper: global scales best; local's convergence
// problem worsens with size).
func BenchmarkFigure8ServerScaling(b *testing.B) {
	o := benchOpts()
	o.Configs = 2
	var r *experiment.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Figure8(o, []int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Servers) - 1
	b.ReportMetric(r.AvgSpeedup["global"][last], "global-at-max-servers")
	b.ReportMetric(r.AvgSpeedup["local"][last], "local-at-max-servers")
}

// BenchmarkFigure9RelocationPeriod regenerates Figure 9: the global
// algorithm's speedup across relocation periods (paper: 5-10 minutes wins).
func BenchmarkFigure9RelocationPeriod(b *testing.B) {
	o := benchOpts()
	o.Configs = 2
	periods := []time.Duration{2 * time.Minute, 10 * time.Minute, time.Hour}
	var r *experiment.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Figure9(o, periods)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range periods {
		b.ReportMetric(r.AvgSpeedup[i], "speedup@"+p.String())
	}
}

// BenchmarkFigure10TreeShape regenerates Figure 10: complete-binary vs
// left-deep combination orders (paper: the bushy order adapts better).
func BenchmarkFigure10TreeShape(b *testing.B) {
	o := benchOpts()
	o.Configs = 2
	var r *experiment.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Figure10(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metrics.Mean(r.Speedups["complete-binary"]["global"]), "binary-global-speedup")
	b.ReportMetric(metrics.Mean(r.Speedups["left-deep"]["global"]), "leftdeep-global-speedup")
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the substrates.
// ---------------------------------------------------------------------------

// BenchmarkSimKernelEvents measures raw event throughput of the
// discrete-event kernel (callback events, no process switches).
func BenchmarkSimKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Second, tick)
		}
	}
	k.After(time.Second, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(k.Scheduled())/secs, "events/s")
	}
}

// BenchmarkSimProcessSwitch measures the goroutine-process context-switch
// cost (one Hold per iteration).
func BenchmarkSimProcessSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("holder", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceTransferDuration measures piecewise-constant bandwidth
// integration over a two-day trace.
func BenchmarkTraceTransferDuration(b *testing.B) {
	tr := trace.Generate("bench", 1, trace.DefaultGenParams(trace.KBps(40)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.TransferDuration(sim.Time(i%1000)*sim.Minute, 128*1024)
	}
}

// BenchmarkTraceGenerate measures synthetic two-day trace generation.
func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = trace.Generate("bench", int64(i), trace.DefaultGenParams(trace.KBps(40)))
	}
}

// BenchmarkOneShotOptimize measures one pass of the §2.1 optimiser on an
// 8-server tree with a 9-host candidate set.
func BenchmarkOneShotOptimize(b *testing.B) {
	tree := plan.CompleteBinary(8)
	sh, ch := plan.DefaultHostAssignment(8)
	initial := plan.NewPlacement(tree, sh, ch)
	model := plan.DefaultCostModel(128 * 1024)
	hosts := make([]netmodel.HostID, 9)
	for i := range hosts {
		hosts[i] = netmodel.HostID(i)
	}
	bw := func(a, c netmodel.HostID) trace.Bandwidth {
		return trace.Bandwidth(10000 + 1000*int(a+c)%50000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = placement.OneShotOptimize(initial, hosts, model, bw)
	}
}

// benchMultiTenant measures one multi-tenant simulation: n concurrent query
// trees (the standard four-policy mix) arriving open-loop onto one shared
// 8-host network.
func benchMultiTenant(b *testing.B, n int) {
	links := func(a, c netmodel.HostID) *trace.Trace {
		return trace.Constant("l", 128*1024)
	}
	specs := tenant.Population(tenant.PopulationConfig{
		N: n, ArrivalRate: 10, Seed: 1, NumServers: 3, Iterations: 4,
	})
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := core.RunMulti(core.MultiConfig{
			Seed: 1, NumServers: 8,
			Links:    links,
			Tenants:  specs,
			Workload: workload.Config{ImagesPerServer: 4, MeanBytes: 64 * 1024, SpreadFrac: 0.1},
			Period:   5 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != n {
			b.Fatalf("completed %d of %d tenants", res.Completed, n)
		}
		events += res.KernelEvents
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

// BenchmarkMultiTenant10/100/1000 measure how RunMulti scales with the
// tenant count: the shared kernel and network are the constants, the
// per-tenant dataflow graphs are the variable.
func BenchmarkMultiTenant10(b *testing.B)   { benchMultiTenant(b, 10) }
func BenchmarkMultiTenant100(b *testing.B)  { benchMultiTenant(b, 100) }
func BenchmarkMultiTenant1000(b *testing.B) { benchMultiTenant(b, 1000) }

// BenchmarkSingleRun measures one complete 8-server, 60-image simulation
// under the global algorithm.
func BenchmarkSingleRun(b *testing.B) {
	pool := trace.NewStudyPool(1)
	links := experiment.GenerateAssignments(pool, 1, 8, 1)[0].LinkFn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.RunConfig{
			Seed: 1, NumServers: 8, Shape: core.CompleteBinaryTree,
			Links: links, Policy: &placement.Global{Period: 10 * time.Minute},
			Workload: workload.Config{ImagesPerServer: 60, MeanBytes: 128 * 1024, SpreadFrac: 0.25},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
