package wadc_test

import (
	"testing"
	"time"

	"wadc/internal/analysis"
	"wadc/internal/core"
	"wadc/internal/experiment"
	"wadc/internal/lint"
	"wadc/internal/placement"
	"wadc/internal/trace"
	"wadc/internal/workload"
)

// TestAllocObservabilityAcceptance is the end-to-end contract for the memory
// observability layer: one real simulation run captured at profile rate 1,
// joined against the //lint:allocbudget annotations collected from this
// repository's source. The join must (a) attribute at least 95% of the
// run's allocations to named sites with subsystem labels, (b) empirically
// confirm every declared budget — a single over-budget verdict means either
// an allocation regression or a stale annotation, both of which belong in
// the failing change — and (c) surface at least 5 unbudgeted hot sites as
// pooling candidates, so the table always points at the next optimization.
func TestAllocObservabilityAcceptance(t *testing.T) {
	pool := trace.NewStudyPool(1)
	assignment := experiment.GenerateAssignments(pool, 1, 8, 1)[0]
	res, err := core.Run(core.RunConfig{
		Seed: 1, NumServers: 8, Shape: core.CompleteBinaryTree,
		Links:  assignment.LinkFn(),
		Policy: &placement.Global{Period: 5 * time.Minute},
		Workload: workload.Config{
			ImagesPerServer: 20, MeanBytes: 128 * 1024, SpreadFrac: 0.25,
		},
		TrackAllocs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.AllocSites
	if rep == nil {
		t.Fatal("TrackAllocs set but AllocSites is nil")
	}
	if cov := rep.Coverage(); cov < 0.95 {
		t.Errorf("coverage = %.3f, want >= 0.95 of allocations attributed", cov)
	}
	for _, site := range rep.Sites {
		if site.Subsystem == "" {
			t.Errorf("site %s (%s:%d) has no subsystem label", site.Func, site.File, site.Line)
		}
	}

	budgets, err := lint.CollectBudgets(".")
	if err != nil {
		t.Fatalf("collecting budgets: %v", err)
	}
	if len(budgets) == 0 {
		t.Fatal("no //lint:allocbudget annotations found in the repository")
	}
	v := analysis.VerifyBudgets(rep, budgets, 10)
	if !v.Confirmed() {
		for _, verdict := range v.Verdicts {
			if verdict.Status != "confirmed" {
				t.Errorf("budget not confirmed: %s observed %d site(s), budget %d (%s)",
					verdict.Budget.Func, verdict.Sites, verdict.Budget.Budget, verdict.Budget.Reason)
			}
		}
	}
	if len(v.Candidates) < 5 {
		t.Errorf("got %d pooling candidates, want >= 5: %+v", len(v.Candidates), v.Candidates)
	}
}
