package wadc_test

import (
	"testing"
	"time"

	"wadc/internal/core"
	"wadc/internal/experiment"
	"wadc/internal/metrics"
	"wadc/internal/monitor"
	"wadc/internal/placement"
	"wadc/internal/trace"
	"wadc/internal/workload"
)

// The ablation benchmarks quantify the design choices DESIGN.md §6 calls
// out: barrier-message priority, monitoring fidelity (timed probes + 40 s
// cache vs an oracle), the cache timeout itself, and the local algorithm's
// staggered epochs.

// ablationRun executes the global algorithm over a few configurations and
// returns the mean completion time in simulated seconds.
func ablationRun(b *testing.B, mutate func(*core.RunConfig)) float64 {
	b.Helper()
	pool := trace.NewStudyPool(1)
	assignments := experiment.GenerateAssignments(pool, 3, 8, 1)
	var total float64
	for i, a := range assignments {
		cfg := core.RunConfig{
			Seed: int64(i + 1), NumServers: 8, Shape: core.CompleteBinaryTree,
			Links:  a.LinkFn(),
			Policy: &placement.Global{Period: 5 * time.Minute},
			Workload: workload.Config{
				ImagesPerServer: 40, MeanBytes: 128 * 1024, SpreadFrac: 0.25,
			},
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Completion.Seconds()
	}
	return total / float64(len(assignments))
}

// BenchmarkAblationBarrierPriority compares the global algorithm with and
// without barrier-message priority (paper §2.2: "barrier messages are
// assigned a higher priority than other messages").
func BenchmarkAblationBarrierPriority(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationRun(b, nil)
		without = ablationRun(b, func(c *core.RunConfig) { c.FlatPriorities = true })
	}
	b.ReportMetric(with, "with-priority-s")
	b.ReportMetric(without, "flat-priority-s")
}

// BenchmarkAblationOracleMonitoring compares timed 16 KB probes against an
// oracle that answers bandwidth queries instantly and exactly — the cost of
// imperfect knowledge for the global algorithm.
func BenchmarkAblationOracleMonitoring(b *testing.B) {
	var timed, oracle float64
	for i := 0; i < b.N; i++ {
		timed = ablationRun(b, nil)
		oracle = ablationRun(b, func(c *core.RunConfig) {
			mc := monitor.DefaultConfig()
			mc.ProbeMode = monitor.ProbeOracle
			c.Monitor = mc
		})
	}
	b.ReportMetric(timed, "timed-probes-s")
	b.ReportMetric(oracle, "oracle-s")
}

// BenchmarkAblationCacheTimeout sweeps the measurement-cache timeout
// T_thres around the paper's 40 s choice.
func BenchmarkAblationCacheTimeout(b *testing.B) {
	timeouts := []time.Duration{10 * time.Second, 40 * time.Second, 5 * time.Minute}
	results := make([]float64, len(timeouts))
	for i := 0; i < b.N; i++ {
		for ti, tt := range timeouts {
			results[ti] = ablationRun(b, func(c *core.RunConfig) {
				mc := monitor.DefaultConfig()
				mc.TThres = tt
				c.Monitor = mc
			})
		}
	}
	for ti, tt := range timeouts {
		b.ReportMetric(results[ti], "tthres-"+tt.String())
	}
}

// BenchmarkAblationStaggeredEpochs compares the local algorithm with the
// paper's per-level staggered epochs against unstaggered epochs (its
// decentralised coordination mechanism switched off).
func BenchmarkAblationStaggeredEpochs(b *testing.B) {
	run := func(unstagger bool) float64 {
		return ablationRun(b, func(c *core.RunConfig) {
			c.Policy = &placement.Local{
				Period: 5 * time.Minute, Seed: c.Seed, Unstagger: unstagger,
			}
		})
	}
	var staggered, unstaggered float64
	for i := 0; i < b.N; i++ {
		staggered = run(false)
		unstaggered = run(true)
	}
	b.ReportMetric(staggered, "staggered-s")
	b.ReportMetric(unstaggered, "unstaggered-s")
}

// TestAblationsRun exercises every ablation path once so the configurations
// stay working even when benchmarks are not run.
func TestAblationsRun(t *testing.T) {
	pool := trace.NewStudyPool(1)
	links := experiment.GenerateAssignments(pool, 1, 4, 1)[0].LinkFn()
	wl := workload.Config{ImagesPerServer: 10, MeanBytes: 64 * 1024, SpreadFrac: 0.2}
	oracle := monitor.DefaultConfig()
	oracle.ProbeMode = monitor.ProbeOracle
	cases := []struct {
		name string
		cfg  core.RunConfig
	}{
		{"flat-priorities", core.RunConfig{
			Policy: &placement.Global{Period: 2 * time.Minute}, FlatPriorities: true}},
		{"oracle-monitoring", core.RunConfig{
			Policy: &placement.Global{Period: 2 * time.Minute}, Monitor: oracle}},
		{"unstaggered-local", core.RunConfig{
			Policy: &placement.Local{Period: 2 * time.Minute, Unstagger: true}}},
	}
	var completions []float64
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Seed, cfg.NumServers, cfg.Links, cfg.Workload = 1, 4, links, wl
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Arrivals) != 10 {
			t.Errorf("%s: %d arrivals", tc.name, len(res.Arrivals))
		}
		completions = append(completions, res.Completion.Seconds())
	}
	if metrics.Min(completions) <= 0 {
		t.Error("degenerate completion time")
	}
}
